// Serial-vs-parallel parity battery for the round engine (common/pool.h),
// driven through the scenario layer (sim/protocol.h).
//
// Parallelism is a hard determinism contract, not a best-effort speedup:
// every protocol run at a fixed seed must produce byte-identical bit
// ledgers and decisions whether the pool runs 1, 2, or 8 workers. The
// protocol scenarios are registry specs (sim/scenario.h) whose
// RunReport::fingerprint digests everything observable from a run — the
// full per-processor ledger (bits/messages sent, bits received),
// decisions, agreement state, round counts, released sequence views —
// and each test asserts the fingerprint is invariant under the worker
// count. The fingerprints are additionally pinned to committed constants:
// the scenario layer adapters must reproduce the historical hand-rolled
// wiring bit for bit, and a pinned digest catches any drift in adapter
// wiring, Rng draw order, or ledger charging. (If a future PR
// deliberately changes protocol draw order, re-record the constants from
// a trusted serial run — the full procedure is documented under
// "Re-pinning the parity baseline" in docs/ARCHITECTURE.md. The pins
// below are the streaming-sendOpen baseline: sendOpen garbage draws come
// from per-receiver forked streams, so scenarios exercising lying
// senders re-recorded once when that stage went parallel.)
//
// Scenarios mirror the examples (quickstart, randomness_beacon) and one
// E-series configuration per protocol family: AEBA with unreliable coins
// (E3), Ben-Or (E9), almost-everywhere-to-everywhere (E4), and universe
// reduction (E13). Two harness-level scenarios (the ShareFlow secret-
// sharing storm and mixed-tag delivery) exercise layers below the
// protocol adapters and stay hand-rolled.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <functional>

#include "common/pool.h"
#include "core/share_flow.h"
#include "net/network.h"
#include "sim/protocol.h"
#include "sim/scenario.h"
#include "tree/tournament_tree.h"

namespace ba {
namespace {

using sim::RunDigest;
using sim::ScenarioRegistry;
using sim::ScenarioSpec;

/// Digest the complete per-processor ledger — byte-identical ledgers are
/// checked processor by processor, not in aggregate, so a reshuffled
/// charge cannot cancel out. (Protocol scenarios get this via
/// sim::mix_run_ledger inside their fingerprint.)
void mix_ledger(RunDigest& d, const Network& net) { sim::mix_run_ledger(d, net); }

/// Runs `scenario` at 1, 2, and 8 pool workers and asserts identical
/// fingerprints; restores the environment-default worker count after.
/// When `expected` is nonzero the serial fingerprint must also equal it.
void expect_parity(const char* name,
                   const std::function<std::uint64_t()>& scenario,
                   std::uint64_t expected = 0) {
  Pool::set_threads(1);
  const std::uint64_t serial = scenario();
  Pool::set_threads(2);
  const std::uint64_t two = scenario();
  Pool::set_threads(8);
  const std::uint64_t eight = scenario();
  Pool::set_threads(0);
  EXPECT_EQ(serial, two) << name << ": 2 workers diverged from serial";
  EXPECT_EQ(serial, eight) << name << ": 8 workers diverged from serial";
  if (expected != 0)
    EXPECT_EQ(serial, expected)
        << name << ": scenario-layer wiring drifted from the recorded "
        << "hand-rolled digest";
}

/// Registry scenario -> serial-run fingerprint.
std::function<std::uint64_t()> registry_scenario(ScenarioSpec spec) {
  return [spec] { return sim::run_scenario(spec).fingerprint; };
}

// ------------------------------------------------------------ scenarios --

TEST(ParallelParity, Quickstart) {
  // examples/quickstart.cpp at test scale: full everywhere BA under the
  // static malicious adversary, split inputs.
  expect_parity("quickstart",
                registry_scenario(ScenarioRegistry::get("quickstart")
                                      .with_n(64)),
                0xcc0336754bc0c7c2ULL);
}

TEST(ParallelParity, RandomnessBeacon) {
  // examples/randomness_beacon.cpp at test scale: the released §3.5
  // sequence views are per-processor words — any divergent view flips
  // the fingerprint.
  expect_parity("randomness_beacon",
                registry_scenario(ScenarioRegistry::get("randomness_beacon")
                                      .with_n(64)),
                0xd78d2c3dbf708b22ULL);
}

TEST(ParallelParity, AebaUnreliableCoins) {
  // E3 configuration at test scale: standalone AEBA over a sparse random
  // graph with unreliable coins (a third of the rounds adversarial),
  // three parallel instances, rushing malicious votes.
  expect_parity("aeba_e3",
                registry_scenario(ScenarioRegistry::get("e3_aeba")
                                      .with_n(96)
                                      .with_aeba_rounds(16)
                                      .with_aeba_instances(3)),
                0x6febc6403a04a061ULL);
}

TEST(ParallelParity, BenOr) {
  // E9 configuration: Ben-Or's local-coin baseline under a crash
  // minority, split inputs.
  expect_parity("benor_e9",
                registry_scenario(ScenarioRegistry::get("e9_benor_small")),
                0x77de7115cdb0ef05ULL);
}

TEST(ParallelParity, AlmostToEverywhere) {
  // E4 configuration at test scale: A2E under request flooding with
  // wrong answers from a corrupt fifth.
  expect_parity("a2e_e4",
                registry_scenario(ScenarioRegistry::get("e4_a2e")
                                      .with_n(256)),
                0xe5a72b55990077d1ULL);
}

TEST(ParallelParity, UniverseReduction) {
  // E13 configuration at test scale: tournament-fuelled committee
  // sampling.
  expect_parity("universe_e13",
                registry_scenario(
                    ScenarioRegistry::get("e13_universe_small")),
                0x14958ab45c47fe76ULL);
}

// ---------------------------------------- partial-synchrony scenarios --

TEST(ParallelParity, BoundedDelayBenOr) {
  // Ben-Or under the bounded-delay scheduler (delta_max = 2 with the
  // matching grace window): delayed votes still reach their phase's
  // tally, so the protocol decides unanimously. The delay draws are a
  // serial pre-pass and the per-receiver merges are draw-free, so the
  // worker count must stay unobservable.
  expect_parity("benor_delay",
                registry_scenario(ScenarioRegistry::get("benor_delay")),
                0x788f2115ce4705c1ULL);
}

TEST(ParallelParity, ReorderRushBenOr) {
  // The full adversarial mode: delay + within-round reordering + the
  // rushing view of all pending traffic. Reordering only permutes
  // same-(tag, sender) duplicates after the counting sort, and Ben-Or
  // sends one message per (sender, tag) pair — so this pin equals the
  // bounded-delay one. That equality is itself part of the contract.
  expect_parity("benor_rush",
                registry_scenario(ScenarioRegistry::get("benor_rush")),
                0x788f2115ce4705c1ULL);
}

TEST(ParallelParity, BoundedDelayEverywhere) {
  // Everywhere BA absorbing a small delay (tournament agreement sags,
  // A2E repairs it) — the deepest protocol stack under the scheduler.
  expect_parity("everywhere_delay",
                registry_scenario(
                    ScenarioRegistry::get("everywhere_delay")),
                0x3ef4b0f1cd39254bULL);
}

TEST(ParallelParity, BoundedDelayEverywhereBreakPoint) {
  // The degradation point the registry pins: delta_max = 12 at n = 64
  // breaks all-good agreement (see docs/ARCHITECTURE.md). Broken-synchrony
  // runs must be exactly as reproducible as healthy ones.
  expect_parity("everywhere_delay_break",
                registry_scenario(
                    ScenarioRegistry::get("everywhere_delay_break")),
                0xcd44c217f4751eccULL);
}

TEST(ParallelParity, ReorderRushEverywhere) {
  // Reorder + rush over the everywhere stack (not a registry entry: the
  // registry pins the bounded-delay pair; this pins the third mode).
  expect_parity("everywhere_rush",
                registry_scenario(ScenarioRegistry::get("quickstart")
                                      .with_n(64)
                                      .with_scheduler(
                                          sim::SchedulerKind::kReorderRush)
                                      .with_delta_max(2)
                                      .with_rush_depth(1)
                                      .with_scheduler_seed(5)),
                0xc391c546c996a099ULL);
}

TEST(ParallelParity, DeltaZeroSchedulerReproducesLockstepPins) {
  // delta_max = 0 must be byte-identical to lockstep REGARDLESS of the
  // scheduler seed: every draw is below(1) == 0, the merge is an
  // identity, and the grace window is zero rounds. Sweeping the seed
  // against the committed lockstep constants proves the scheduler path
  // adds no observable state of its own.
  for (std::uint64_t seed : {1ULL, 7ULL, 0xDEADBEEFULL}) {
    expect_parity("quickstart_delta0",
                  registry_scenario(
                      ScenarioRegistry::get("quickstart")
                          .with_n(64)
                          .with_scheduler(sim::SchedulerKind::kBoundedDelay)
                          .with_delta_max(0)
                          .with_scheduler_seed(seed)),
                  0xcc0336754bc0c7c2ULL);
    expect_parity("benor_delta0",
                  registry_scenario(
                      ScenarioRegistry::get("e9_benor_small")
                          .with_scheduler(sim::SchedulerKind::kBoundedDelay)
                          .with_delta_max(0)
                          .with_scheduler_seed(seed)),
                  0x77de7115cdb0ef05ULL);
  }
}

// ------------------------------------------ harness-level scenarios --

std::uint64_t run_share_flow_e8() {
  // E8 configuration: the secret-sharing path in isolation, share-heavy —
  // a batched dealing storm at every leaf, iterated re-dealing to the
  // root, and robust recombination back down, under a corrupt fifth. The
  // lying style forces damaged decodes and reconstruction failures (the
  // optimistic-restart path); the silent style forces below-threshold
  // groups and insufficient leaf exchanges. Every leaf view word, member
  // view word, and ledger row feeds the digest.
  RunDigest d;
  for (int style = 0; style < 2; ++style) {
    const std::size_t n = 64;
    ProtocolParams params = ProtocolParams::laptop_scale(n);
    params.tree.q = 4;
    params.tree.k1 = 12;
    params.tree.d_up = 12;
    Rng rng(8800 + style);
    Rng tree_rng = rng.fork(1);
    TournamentTree tree(params.tree, tree_rng);
    Network net(n, n / 3);
    ShareFlow flow(params, tree, net, rng.fork(2));
    flow.set_fault_style(style == 0 ? FaultStyle::lying
                                    : FaultStyle::silent);
    for (std::size_t c = 0; c < n / 5; ++c) {
      const auto p = static_cast<ProcId>(rng.below(n));
      if (!net.is_corrupt(p)) net.corrupt(p);
    }
    // One array per processor, dealt in one batch.
    const std::size_t words = 8;
    std::vector<std::vector<Fp>> all_words(n, std::vector<Fp>(words));
    std::vector<ShareFlow::DealJob> jobs(n);
    for (ProcId i = 0; i < n; ++i) {
      Rng arr = rng.fork(0x900 + i);
      for (auto& w : all_words[i]) w = Fp(arr.next());
      jobs[i].owner = i;
      jobs[i].leaf_idx = i;
      jobs[i].words = &all_words[i];
    }
    auto dealt = flow.deal_to_leaf_batch(jobs);
    // March three arrays to the top and expose two word ranges each.
    for (ProcId id : {ProcId{0}, ProcId{5}, ProcId{17}}) {
      ArrayState a;
      a.id = id;
      a.recs = std::move(dealt[id]);
      a.level = 1;
      a.node_idx = id;
      while (a.level < tree.num_levels())
        flow.send_secret_up(a, a.level >= 2 ? 2 : 0,
                            [](std::size_t) { return true; });
      for (std::size_t w0 : {std::size_t{2}, std::size_t{5}}) {
        LeafViews lv = flow.send_down(a, w0, w0 + 3);
        for (std::size_t leaf = 0; leaf < lv.leaf_count(); ++leaf)
          for (std::size_t pos = 0; pos < lv.k1(); ++pos)
            for (std::size_t w = 0; w < lv.nwords(); ++w)
              d.mix(lv.at(leaf, pos, w).value());
        MemberViews mv = flow.send_open(a.level, a.node_idx, lv);
        const std::size_t members =
            tree.node(a.level, a.node_idx).members.size();
        for (std::size_t pos = 0; pos < members; ++pos)
          for (std::size_t w = 0; w < mv.nwords(); ++w)
            d.mix(mv.at(pos, w).value());
      }
    }
    mix_ledger(d, net);
  }
  return d.h;
}

TEST(ParallelParity, ShareFlowSecretSharing) {
  expect_parity("share_flow_e8", run_share_flow_e8,
                0xae25abcc99f8af0dULL);
}

std::uint64_t run_send_open_storm() {
  // Lying-sender storm for the streaming sendOpen stage: the corruption
  // budget is spent in full (n/3, vs E8's fifth), so nearly every leaf
  // the opens walk contains corrupt members and the pooled per-receiver
  // tallies draw from their forked garbage streams on almost every
  // slice — the worst interleaving for the per-receiver stream-fork
  // derivation. Both open paths feed the digest: the batched expose path
  // (one salt per job, drawn at the job's serial position) and the
  // direct send_down + send_open pair that defines the draw order. The
  // second pass flips to the silent style at the same budget, pinning
  // the below-threshold branches of the same binned structural pass.
  RunDigest d;
  for (int style = 0; style < 2; ++style) {
    const std::size_t n = 64;
    ProtocolParams params = ProtocolParams::laptop_scale(n);
    params.tree.q = 4;
    params.tree.k1 = 12;
    params.tree.d_up = 12;
    Rng rng(9700 + style);
    Rng tree_rng = rng.fork(1);
    TournamentTree tree(params.tree, tree_rng);
    Network net(n, n / 3);
    ShareFlow flow(params, tree, net, rng.fork(2));
    flow.set_fault_style(style == 0 ? FaultStyle::lying
                                    : FaultStyle::silent);
    while (net.corruption_budget_left() > 0) {
      const auto p = static_cast<ProcId>(rng.below(n));
      if (!net.is_corrupt(p)) net.corrupt(p);
    }
    const std::size_t words = 8;
    std::vector<std::vector<Fp>> all_words(n, std::vector<Fp>(words));
    std::vector<ShareFlow::DealJob> jobs(n);
    for (ProcId i = 0; i < n; ++i) {
      Rng arr = rng.fork(0xA00 + i);
      for (auto& w : all_words[i]) w = Fp(arr.next());
      jobs[i].owner = i;
      jobs[i].leaf_idx = i;
      jobs[i].words = &all_words[i];
    }
    auto dealt = flow.deal_to_leaf_batch(jobs);
    std::vector<ArrayState> arrays;
    for (ProcId id : {ProcId{3}, ProcId{9}, ProcId{21}, ProcId{40}}) {
      ArrayState a;
      a.id = id;
      a.recs = std::move(dealt[id]);
      a.level = 1;
      a.node_idx = id;
      while (a.level < tree.num_levels())
        flow.send_secret_up(a, a.level >= 2 ? 2 : 0,
                            [](std::size_t) { return true; });
      arrays.push_back(std::move(a));
    }
    // Batched path: every array exposes two word ranges in one batch.
    std::vector<ShareFlow::ExposeJob> batch;
    for (const ArrayState& a : arrays)
      for (std::size_t w0 : {std::size_t{2}, std::size_t{5}})
        batch.push_back({&a, w0, w0 + 3});
    const std::vector<ShareFlow::Exposure> exposures =
        flow.expose_batch(batch);
    for (std::size_t j = 0; j < exposures.size(); ++j) {
      const ShareFlow::Exposure& e = exposures[j];
      for (std::size_t leaf = 0; leaf < e.views.leaf_count(); ++leaf)
        for (std::size_t pos = 0; pos < e.views.k1(); ++pos)
          for (std::size_t w = 0; w < e.views.nwords(); ++w)
            d.mix(e.views.at(leaf, pos, w).value());
      const std::size_t opened_members =
          tree.node(batch[j].a->level, batch[j].a->node_idx)
              .members.size();
      for (std::size_t pos = 0; pos < opened_members; ++pos)
        for (std::size_t w = 0; w < e.opened.nwords(); ++w)
          d.mix(e.opened.at(pos, w).value());
    }
    // Direct path (the draw-order definition) on the first array.
    const ArrayState& a0 = arrays.front();
    LeafViews lv = flow.send_down(a0, 3, 6);
    for (std::size_t leaf = 0; leaf < lv.leaf_count(); ++leaf)
      for (std::size_t pos = 0; pos < lv.k1(); ++pos)
        for (std::size_t w = 0; w < lv.nwords(); ++w)
          d.mix(lv.at(leaf, pos, w).value());
    MemberViews mv = flow.send_open(a0.level, a0.node_idx, lv);
    const std::size_t members =
        tree.node(a0.level, a0.node_idx).members.size();
    for (std::size_t pos = 0; pos < members; ++pos)
      for (std::size_t w = 0; w < mv.nwords(); ++w)
        d.mix(mv.at(pos, w).value());
    mix_ledger(d, net);
  }
  return d.h;
}

TEST(ParallelParity, SendOpenLyingStorm) {
  expect_parity("send_open_storm", run_send_open_storm,
                0x1ab01d696c68b47eULL);
}

TEST(ParallelParity, NetworkDeliveryMixedTags) {
  // Delivery-layer parity in isolation, with the mixed-tag (two-pass
  // counting sort) path exercised — protocol runs above mostly stay on
  // the uniform-tag fast path.
  auto scenario = [] {
    const std::size_t n = 512;
    Network net(n, n / 3);
    Rng rng(77);
    RunDigest d;
    for (int round = 0; round < 6; ++round) {
      const std::size_t sends = 4096;
      for (std::size_t i = 0; i < sends; ++i) {
        const auto from = static_cast<ProcId>(rng.below(n));
        const auto to = static_cast<ProcId>(rng.below(n));
        net.send(from, to,
                 make_value_payload(100 + static_cast<std::uint32_t>(
                                              rng.below(5)),
                                    rng.next(), 61));
      }
      if (net.corruption_budget_left() > 0)
        net.corrupt(static_cast<ProcId>(rng.below(n)));
      net.advance_round();
      for (ProcId p = 0; p < n; ++p)
        for (const auto& env : net.inbox(p)) {
          d.mix(env.from);
          d.mix(env.payload.tag);
          d.mix(env.payload.words.empty() ? 0 : env.payload.words[0]);
        }
    }
    mix_ledger(d, net);
    return d.h;
  };
  expect_parity("network_mixed_tags", scenario, 0x3be79e5fc38f109dULL);
}

}  // namespace
}  // namespace ba
