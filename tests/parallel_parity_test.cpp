// Serial-vs-parallel parity battery for the round engine (common/pool.h).
//
// Parallelism is a hard determinism contract, not a best-effort speedup:
// every protocol run at a fixed seed must produce byte-identical bit
// ledgers and decisions whether the pool runs 1, 2, or 8 workers. Each
// scenario below digests everything observable from a run — the full
// per-processor ledger (bits/messages sent, bits received), decisions,
// agreement state, round counts, released sequence views — into one
// 64-bit fingerprint and asserts the fingerprint is invariant under the
// worker count. Scenarios mirror the examples (quickstart,
// randomness_beacon) and one E-series configuration per protocol family:
// AEBA with unreliable coins (E3), Ben-Or (E9), almost-everywhere-to-
// everywhere (E4), and universe reduction (E13).
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <functional>

#include "adversary/strategies.h"
#include "aeba/aeba_with_coins.h"
#include "baseline/benor_ba.h"
#include "common/pool.h"
#include "core/a2e.h"
#include "core/everywhere.h"
#include "core/global_coin.h"
#include "core/share_flow.h"
#include "core/universe_reduction.h"

namespace ba {
namespace {

std::vector<std::uint8_t> random_inputs(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::uint8_t> in(n);
  for (auto& b : in) b = rng.flip() ? 1 : 0;
  return in;
}

/// Run fingerprint accumulator (FNV-1a from common/rng.h plus a
/// bit-exact double mixer).
struct Digest : Fnv1a {
  void mix_double(double v) {
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v), "double must be 64-bit");
    std::memcpy(&bits, &v, sizeof(bits));
    mix(bits);
  }
};

/// Digest the complete per-processor ledger — the ISSUE's "byte-identical
/// ledger bit counts" is checked processor by processor, not in
/// aggregate, so a reshuffled charge cannot cancel out.
void mix_ledger(Digest& d, const Network& net) {
  const BitLedger& ledger = net.ledger();
  for (ProcId p = 0; p < net.size(); ++p) {
    d.mix(ledger.bits_sent(p));
    d.mix(ledger.msgs_sent(p));
    d.mix(ledger.bits_received(p));
  }
  d.mix(net.round());
  d.mix(net.corrupt_count());
}

/// Runs `scenario` at 1, 2, and 8 pool workers and asserts identical
/// fingerprints; restores the environment-default worker count after.
void expect_parity(const char* name,
                   const std::function<std::uint64_t()>& scenario) {
  Pool::set_threads(1);
  const std::uint64_t serial = scenario();
  Pool::set_threads(2);
  const std::uint64_t two = scenario();
  Pool::set_threads(8);
  const std::uint64_t eight = scenario();
  Pool::set_threads(0);
  EXPECT_EQ(serial, two) << name << ": 2 workers diverged from serial";
  EXPECT_EQ(serial, eight) << name << ": 8 workers diverged from serial";
}

// ------------------------------------------------------------ scenarios --

std::uint64_t run_quickstart() {
  // examples/quickstart.cpp at test scale: full everywhere BA under the
  // static malicious adversary, split inputs.
  const std::size_t n = 64;
  Network net(n, n / 3);
  StaticMaliciousAdversary adversary(0.10, 42);
  std::vector<std::uint8_t> inputs(n);
  for (std::size_t p = 0; p < n; ++p) inputs[p] = p % 2;
  EverywhereBA protocol = EverywhereBA::make(n, 7);
  EverywhereResult result = protocol.run(net, adversary, inputs);
  Digest d;
  d.mix(result.decided_bit ? 1 : 0);
  d.mix(result.all_good_agree ? 1 : 0);
  d.mix(result.validity ? 1 : 0);
  d.mix(result.rounds);
  d.mix_double(result.ae.agreement_fraction);
  for (auto bit : result.ae.decision) d.mix(bit);
  for (auto m : result.a2e.message) d.mix(m);
  mix_ledger(d, net);
  return d.h;
}

std::uint64_t run_randomness_beacon() {
  // examples/randomness_beacon.cpp at test scale: the released §3.5
  // sequence views are per-processor words — any divergent view flips
  // the digest.
  const std::size_t n = 64;
  Network net(n, n / 3);
  StaticMaliciousAdversary adversary(0.10, 2024);
  auto params = ProtocolParams::laptop_scale(n);
  params.coin_words = 4;
  AlmostEverywhereBA protocol(params, 77);
  std::vector<std::uint8_t> inputs(n, 0);
  auto result = protocol.run(net, adversary, inputs);
  auto quality = assess_sequence(result, net.corrupt_mask());
  Digest d;
  d.mix(quality.length);
  d.mix(quality.good_words);
  d.mix_double(quality.min_good_agreement);
  for (const auto& word_views : result.seq_views)
    for (auto v : word_views) d.mix(v);
  for (auto t : result.seq_truth) d.mix(t);
  mix_ledger(d, net);
  return d.h;
}

std::uint64_t run_aeba_e3() {
  // E3 configuration: standalone AEBA over a sparse random graph with
  // unreliable coins (a third of the rounds adversarial) and rushing
  // malicious votes.
  const std::size_t n = 96, rounds = 16;
  Network net(n, n / 2);
  Rng gr(300);
  auto graph = RegularGraph::random(
      n, 2 * static_cast<std::size_t>(std::log2(n)), gr);
  std::vector<ProcId> members(n);
  for (std::size_t i = 0; i < n; ++i) members[i] = static_cast<ProcId>(i);
  AebaMachine machine(1, members, &graph, AebaParams{}, 3);
  StaticMaliciousAdversary adv(0.2, 400);
  adv.on_start(net);
  Rng in(500);
  for (std::size_t p = 0; p < n; ++p)
    for (std::size_t i = 0; i < 3; ++i) machine.set_input(p, i, in.flip());
  std::vector<bool> bad(rounds, false);
  Rng badr(600);
  for (std::size_t r = 0; r < rounds; ++r) bad[r] = badr.bernoulli(1.0 / 3);
  UnreliableCoins coins(Rng(700), bad);
  coins.attach_votes(&machine.packed_votes(), machine.num_instances());
  auto res = run_aeba(net, adv, machine, coins, rounds);
  Digest d;
  for (std::size_t i = 0; i < res.decided.size(); ++i) {
    d.mix(res.decided[i] ? 1 : 0);
    d.mix_double(res.agreement[i]);
  }
  d.mix(res.rounds);
  for (auto w : machine.packed_votes()) d.mix(w);
  mix_ledger(d, net);
  return d.h;
}

std::uint64_t run_benor_e9() {
  // E9 configuration: Ben-Or's local-coin baseline under a crash
  // minority, split inputs.
  const std::size_t n = 48;
  Network net(n, n / 6);
  CrashAdversary adv(0.1, 13);
  auto res = run_benor_ba(net, adv, random_inputs(n, 9), 10, 200);
  Digest d;
  d.mix(res.decided_bit ? 1 : 0);
  d.mix(res.all_good_agree ? 1 : 0);
  d.mix(res.validity ? 1 : 0);
  d.mix(res.rounds);
  d.mix_double(res.agreement_fraction);
  mix_ledger(d, net);
  return d.h;
}

std::uint64_t run_a2e_e4() {
  // E4 configuration: A2E under request flooding with wrong answers from
  // a corrupt fifth.
  const std::size_t n = 256;
  Network net(n, n / 3);
  FloodingA2EAdversary adv(0.2, 800, 64);
  adv.on_start(net);
  Rng pick(900);
  std::vector<std::uint64_t> beliefs(n, 0);
  for (auto p : pick.sample_without_replacement(n, (3 * n) / 4))
    beliefs[p] = 1;
  AlmostToEverywhere a2e(A2EParams::laptop_scale(n), 1000);
  auto res = a2e.run(net, adv, beliefs, 1,
                     [](std::size_t loop, ProcId) {
                       std::uint64_t s = 1100 + loop * 1000003ULL;
                       return splitmix64(s);
                     });
  Digest d;
  for (auto m : res.message) d.mix(m);
  for (bool b : res.decided) d.mix(b ? 1 : 0);
  d.mix(res.agree_count);
  d.mix(res.wrong_count);
  d.mix(res.rounds);
  mix_ledger(d, net);
  return d.h;
}

std::uint64_t run_universe_e13() {
  // E13 configuration: tournament-fuelled committee sampling.
  const std::size_t n = 64;
  Network net(n, n / 3);
  StaticMaliciousAdversary adv(0.15, 21);
  auto params = ProtocolParams::laptop_scale(n);
  params.coin_words = 3;
  UniverseReduction reduction(params, 8, 31);
  auto res = reduction.run(net, adv);
  Digest d;
  for (auto p : res.committee) d.mix(p);
  d.mix_double(res.view_agreement);
  d.mix_double(res.good_fraction_at_sampling);
  d.mix(res.ae.decided_bit ? 1 : 0);
  d.mix(res.ae.rounds);
  mix_ledger(d, net);
  return d.h;
}

std::uint64_t run_share_flow_e8() {
  // E8 configuration: the secret-sharing path in isolation, share-heavy —
  // a batched dealing storm at every leaf, iterated re-dealing to the
  // root, and robust recombination back down, under a corrupt fifth. The
  // lying style forces damaged decodes and reconstruction failures (the
  // optimistic-restart path); the silent style forces below-threshold
  // groups and insufficient leaf exchanges. Every leaf view word, member
  // view word, and ledger row feeds the digest.
  Digest d;
  for (int style = 0; style < 2; ++style) {
    const std::size_t n = 64;
    ProtocolParams params = ProtocolParams::laptop_scale(n);
    params.tree.q = 4;
    params.tree.k1 = 12;
    params.tree.d_up = 12;
    Rng rng(8800 + style);
    Rng tree_rng = rng.fork(1);
    TournamentTree tree(params.tree, tree_rng);
    Network net(n, n / 3);
    ShareFlow flow(params, tree, net, rng.fork(2));
    flow.set_fault_style(style == 0 ? FaultStyle::lying
                                    : FaultStyle::silent);
    for (std::size_t c = 0; c < n / 5; ++c) {
      const auto p = static_cast<ProcId>(rng.below(n));
      if (!net.is_corrupt(p)) net.corrupt(p);
    }
    // One array per processor, dealt in one batch.
    const std::size_t words = 8;
    std::vector<std::vector<Fp>> all_words(n, std::vector<Fp>(words));
    std::vector<ShareFlow::DealJob> jobs(n);
    for (ProcId i = 0; i < n; ++i) {
      Rng arr = rng.fork(0x900 + i);
      for (auto& w : all_words[i]) w = Fp(arr.next());
      jobs[i].owner = i;
      jobs[i].leaf_idx = i;
      jobs[i].words = &all_words[i];
    }
    auto dealt = flow.deal_to_leaf_batch(jobs);
    // March three arrays to the top and expose two word ranges each.
    for (ProcId id : {ProcId{0}, ProcId{5}, ProcId{17}}) {
      ArrayState a;
      a.id = id;
      a.recs = std::move(dealt[id]);
      a.level = 1;
      a.node_idx = id;
      while (a.level < tree.num_levels())
        flow.send_secret_up(a, a.level >= 2 ? 2 : 0,
                            [](std::size_t) { return true; });
      for (std::size_t w0 : {std::size_t{2}, std::size_t{5}}) {
        LeafViews lv = flow.send_down(a, w0, w0 + 3);
        for (std::size_t leaf = 0; leaf < lv.leaf_count(); ++leaf)
          for (std::size_t pos = 0; pos < lv.k1(); ++pos)
            for (std::size_t w = 0; w < lv.nwords(); ++w)
              d.mix(lv.at(leaf, pos, w).value());
        MemberViews mv = flow.send_open(a.level, a.node_idx, lv);
        const std::size_t members =
            tree.node(a.level, a.node_idx).members.size();
        for (std::size_t pos = 0; pos < members; ++pos)
          for (std::size_t w = 0; w < mv.nwords(); ++w)
            d.mix(mv.at(pos, w).value());
      }
    }
    mix_ledger(d, net);
  }
  return d.h;
}

// ------------------------------------------------------------ the suite --

TEST(ParallelParity, Quickstart) { expect_parity("quickstart", run_quickstart); }

TEST(ParallelParity, RandomnessBeacon) {
  expect_parity("randomness_beacon", run_randomness_beacon);
}

TEST(ParallelParity, AebaUnreliableCoins) {
  expect_parity("aeba_e3", run_aeba_e3);
}

TEST(ParallelParity, BenOr) { expect_parity("benor_e9", run_benor_e9); }

TEST(ParallelParity, AlmostToEverywhere) {
  expect_parity("a2e_e4", run_a2e_e4);
}

TEST(ParallelParity, UniverseReduction) {
  expect_parity("universe_e13", run_universe_e13);
}

TEST(ParallelParity, ShareFlowSecretSharing) {
  expect_parity("share_flow_e8", run_share_flow_e8);
}

TEST(ParallelParity, NetworkDeliveryMixedTags) {
  // Delivery-layer parity in isolation, with the mixed-tag (two-pass
  // counting sort) path exercised — protocol runs above mostly stay on
  // the uniform-tag fast path.
  auto scenario = [] {
    const std::size_t n = 512;
    Network net(n, n / 3);
    Rng rng(77);
    Digest d;
    for (int round = 0; round < 6; ++round) {
      const std::size_t sends = 4096;
      for (std::size_t i = 0; i < sends; ++i) {
        const auto from = static_cast<ProcId>(rng.below(n));
        const auto to = static_cast<ProcId>(rng.below(n));
        net.send(from, to,
                 make_value_payload(100 + static_cast<std::uint32_t>(
                                              rng.below(5)),
                                    rng.next(), 61));
      }
      if (net.corruption_budget_left() > 0)
        net.corrupt(static_cast<ProcId>(rng.below(n)));
      net.advance_round();
      for (ProcId p = 0; p < n; ++p)
        for (const auto& env : net.inbox(p)) {
          d.mix(env.from);
          d.mix(env.payload.tag);
          d.mix(env.payload.words.empty() ? 0 : env.payload.words[0]);
        }
    }
    mix_ledger(d, net);
    return d.h;
  };
  expect_parity("network_mixed_tags", scenario);
}

}  // namespace
}  // namespace ba
