// Unit-level tests for the Algorithm 3 engine: parameter derivation,
// overload and flooding caps, decision thresholds, stickiness, and label
// view divergence.
#include <gtest/gtest.h>

#include "adversary/strategies.h"
#include "core/a2e.h"

namespace ba {
namespace {

std::function<std::uint64_t(std::size_t, ProcId)> constant_label(
    std::uint64_t k) {
  return [k](std::size_t, ProcId) { return k; };
}

TEST(A2EParams, LaptopScaleDerivation) {
  auto p = A2EParams::laptop_scale(1024);
  EXPECT_EQ(p.sqrt_n, 32u);
  EXPECT_GE(p.requests_per_label, 24u);
  EXPECT_GE(p.repeats, 2u);
  EXPECT_EQ(p.overload_cap, 32u * 10u);  // sqrt(n) * log2(n)
  EXPECT_GE(p.per_sender_cap, 4u);
}

TEST(A2EParams, NonSquareSizesRoundUp) {
  auto p = A2EParams::laptop_scale(1000);
  EXPECT_EQ(p.sqrt_n, 32u);  // ceil(sqrt(1000)) = 32
}

TEST(A2EParams, DecisionThresholdFormula) {
  A2EParams p;
  p.requests_per_label = 40;
  p.eps = 0.1;
  // (0.5 + 3*0.1/8) * 40 = 21.5 -> 21.
  EXPECT_EQ(p.decision_threshold(), 21u);
}

TEST(A2E, RejectsDegenerateParams) {
  A2EParams p;
  p.sqrt_n = 0;
  EXPECT_THROW(AlmostToEverywhere(p, 1), std::logic_error);
  p = A2EParams::laptop_scale(64);
  p.repeats = 0;
  EXPECT_THROW(AlmostToEverywhere(p, 1), std::logic_error);
}

TEST(A2E, RunsExactlyTwoRoundsPerLoop) {
  const std::size_t n = 64;
  Network net(n, n / 3);
  PassiveStaticAdversary adv({});
  auto p = A2EParams::laptop_scale(n);
  p.repeats = 3;
  AlmostToEverywhere a2e(p, 2);
  std::vector<std::uint64_t> beliefs(n, 1);
  auto res = a2e.run(net, adv, beliefs, 1, constant_label(0));
  EXPECT_EQ(res.rounds, 6u);
  EXPECT_EQ(res.loops.size(), 3u);
}

TEST(A2E, ArbitraryMessagesNotJustBits) {
  const std::size_t n = 128;
  Network net(n, n / 3);
  PassiveStaticAdversary adv({});
  auto p = A2EParams::laptop_scale(n);
  const std::uint64_t m = 0xDEADBEEFCAFEULL;
  std::vector<std::uint64_t> beliefs(n, 0);
  Rng pick(3);
  for (auto q : pick.sample_without_replacement(n, (8 * n) / 10))
    beliefs[q] = m;
  AlmostToEverywhere a2e(p, 4);
  auto res = a2e.run(net, adv, beliefs, m, constant_label(1));
  EXPECT_TRUE(res.all_good_agree);
  for (ProcId q = 0; q < n; ++q)
    if (!net.is_corrupt(q)) EXPECT_EQ(res.message[q], m);
}

TEST(A2E, TinyOverloadCapForcesSilence) {
  // With overload_cap = 0 every knowledgeable processor is overloaded on
  // the active label, so nobody responds and nobody decides — but nobody
  // decides *wrongly* either (Lemma 7(2)'s safety direction).
  const std::size_t n = 64;
  Network net(n, n / 3);
  PassiveStaticAdversary adv({});
  auto p = A2EParams::laptop_scale(n);
  p.overload_cap = 0;
  p.repeats = 2;
  std::vector<std::uint64_t> beliefs(n, 0);
  for (ProcId q = 0; q < n / 2 + n / 5; ++q) beliefs[q] = 1;
  AlmostToEverywhere a2e(p, 5);
  auto res = a2e.run(net, adv, beliefs, 1, constant_label(2));
  for (const auto& loop : res.loops) {
    EXPECT_GT(loop.overloaded_knowledgeable, 0u);
    EXPECT_EQ(loop.decided_wrong, 0u);
  }
  EXPECT_FALSE(res.all_good_agree);
}

TEST(A2E, DecidedBeliefsPersistAcrossLoops) {
  const std::size_t n = 128;
  Network net(n, n / 3);
  PassiveStaticAdversary adv({});
  auto p = A2EParams::laptop_scale(n);
  p.repeats = 4;
  std::vector<std::uint64_t> beliefs(n, 0);
  Rng pick(7);
  for (auto q : pick.sample_without_replacement(n, (85 * n) / 100))
    beliefs[q] = 1;
  AlmostToEverywhere a2e(p, 8);
  auto res = a2e.run(net, adv, beliefs, 1, constant_label(3));
  // Once all loops report success, the final state must agree.
  ASSERT_FALSE(res.loops.empty());
  if (res.loops.front().loop_success) {
    for (const auto& loop : res.loops) EXPECT_TRUE(loop.loop_success);
    EXPECT_TRUE(res.all_good_agree);
  }
}

TEST(A2E, DivergentLabelViewsDegradeGracefully) {
  // A tenth of processors see the wrong k: they fail to respond on the
  // real label (lost responders) and respond on a label nobody counts.
  // Decisions still land because the margin absorbs 10%.
  const std::size_t n = 256;
  Network net(n, n / 3);
  PassiveStaticAdversary adv({});
  auto p = A2EParams::laptop_scale(n);
  std::vector<std::uint64_t> beliefs(n, 1);
  beliefs[0] = 0;  // one confused processor to actually convert
  auto labels = [](std::size_t, ProcId q) -> std::uint64_t {
    return q % 10 == 0 ? 7 : 3;
  };
  AlmostToEverywhere a2e(p, 9);
  auto res = a2e.run(net, adv, beliefs, 1, labels);
  EXPECT_TRUE(res.all_good_agree);
}

TEST(A2E, FloodedRequestsAreChargedButCapped) {
  const std::size_t n = 128;
  Network net(n, n / 3);
  FloodingA2EAdversary adv(0.2, 10, /*flood_per_pair=*/512);
  adv.on_start(net);
  auto p = A2EParams::laptop_scale(n);
  p.repeats = 1;
  std::vector<std::uint64_t> beliefs(n, 1);
  AlmostToEverywhere a2e(p, 11);
  auto res = a2e.run(net, adv, beliefs, 1, constant_label(4));
  // Flood traffic is real traffic (charged to corrupt senders)...
  EXPECT_GT(net.ledger().total_bits_sent(net.corrupt_mask(), true), 0u);
  // ...but the per-sender cap keeps knowledgeable overload at zero-ish.
  for (const auto& loop : res.loops)
    EXPECT_LE(loop.overloaded_knowledgeable, n / 20);
}

TEST(A2E, CorruptProcessorsNeverCountedInStats) {
  const std::size_t n = 64;
  Network net(n, n / 3);
  StaticMaliciousAdversary adv(0.3, 12);
  adv.on_start(net);
  auto p = A2EParams::laptop_scale(n);
  std::vector<std::uint64_t> beliefs(n, 1);
  AlmostToEverywhere a2e(p, 13);
  auto res = a2e.run(net, adv, beliefs, 1, constant_label(5));
  EXPECT_EQ(res.agree_count + res.wrong_count, net.good_procs().size());
}

class A2EKnowledge : public ::testing::TestWithParam<double> {};

TEST_P(A2EKnowledge, SafetyHoldsAtEveryKnowledgeLevel) {
  // Whatever the knowledgeable fraction, good processors never flip to a
  // non-M value *in bulk* (the threshold protects them); liveness kicks
  // in once knowledge exceeds the decision margin.
  const double know = GetParam();
  const std::size_t n = 256;
  Network net(n, n / 3);
  PassiveStaticAdversary adv({});
  auto p = A2EParams::laptop_scale(n);
  std::vector<std::uint64_t> beliefs(n, 0);
  Rng pick(17);
  for (auto q : pick.sample_without_replacement(
           n, static_cast<std::size_t>(know * n)))
    beliefs[q] = 1;
  AlmostToEverywhere a2e(p, 18);
  auto res = a2e.run(net, adv, beliefs, 1, constant_label(6));
  const double good = static_cast<double>(net.good_procs().size());
  if (know >= 0.75)
    EXPECT_GE(static_cast<double>(res.agree_count) / good, 0.95);
  // Wrong deciders stay a small minority; at the theorem's boundary
  // (1/2 + eps with eps = 0.1) the paper's a = 32c/eps^2 constant is far
  // above our laptop-scale request budget, so the tail is wider there
  // (EXPERIMENTS.md E4) — the bound reflects that.
  const auto allowance = static_cast<std::size_t>(
      know >= 0.75 ? good / 20 : good / 8);
  for (const auto& loop : res.loops)
    EXPECT_LE(loop.decided_wrong, allowance);
}

INSTANTIATE_TEST_SUITE_P(Levels, A2EKnowledge,
                         ::testing::Values(0.6, 0.75, 0.9, 1.0));

}  // namespace
}  // namespace ba
