// Cross-cutting integration properties: determinism, conservation laws of
// the bit ledger, adversary-budget enforcement through full runs, the
// honest/silent/lying fault-style paths, and the global-coin helpers.
#include <gtest/gtest.h>

#include "adversary/strategies.h"
#include "core/everywhere.h"
#include "core/global_coin.h"

namespace ba {
namespace {

std::vector<std::uint8_t> random_inputs(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::uint8_t> in(n);
  for (auto& b : in) b = rng.flip() ? 1 : 0;
  return in;
}

TEST(Determinism, SameSeedSameRun) {
  const std::size_t n = 64;
  auto run_once = [&](std::uint64_t seed) {
    Network net(n, n / 3);
    StaticMaliciousAdversary adv(0.1, 5);
    AlmostEverywhereBA proto(ProtocolParams::laptop_scale(n), seed);
    auto res = proto.run(net, adv, random_inputs(n, 9));
    return std::tuple{res.decided_bit, res.agreement_fraction, res.rounds,
                      net.ledger().total_bits_sent(net.corrupt_mask(),
                                                   false)};
  };
  EXPECT_EQ(run_once(123), run_once(123));
}

TEST(Determinism, DifferentSeedsDiffer) {
  const std::size_t n = 64;
  auto bits_of = [&](std::uint64_t seed) {
    Network net(n, n / 3);
    PassiveStaticAdversary adv({});
    AlmostEverywhereBA proto(ProtocolParams::laptop_scale(n), seed);
    proto.run(net, adv, random_inputs(n, 9));
    return net.ledger().total_bits_sent(net.corrupt_mask(), false);
  };
  // Different tournament randomness => different share routing => at
  // least slightly different totals (w.h.p.).
  EXPECT_NE(bits_of(1), bits_of(2));
}

TEST(Ledger, SendReceiveConservation) {
  // Every charged bit has exactly one sender and one receiver.
  const std::size_t n = 64;
  Network net(n, n / 3);
  StaticMaliciousAdversary adv(0.1, 3);
  AlmostEverywhereBA proto(ProtocolParams::laptop_scale(n), 4);
  proto.run(net, adv, random_inputs(n, 5));
  std::uint64_t sent = 0, received = 0;
  for (ProcId p = 0; p < n; ++p) {
    sent += net.ledger().bits_sent(p);
    received += net.ledger().bits_received(p);
  }
  // AEBA vote envelopes queued in the final round are never delivered,
  // so sent >= received with a small tail.
  EXPECT_GE(sent, received);
  EXPECT_LE(sent - received, sent / 100);
}

TEST(Budget, NeverExceededByAnyStrategy) {
  const std::size_t n = 64;
  for (int which = 0; which < 3; ++which) {
    Network net(n, n / 3);
    std::unique_ptr<Adversary> adv;
    if (which == 0)
      adv = std::make_unique<StaticMaliciousAdversary>(0.9, 6);  // greedy
    else if (which == 1)
      adv = std::make_unique<AdaptiveWinnerTakeover>(7);
    else
      adv = std::make_unique<CrashAdversary>(0.9, 8);
    AlmostEverywhereBA proto(ProtocolParams::laptop_scale(n), 9);
    proto.run(net, *adv, random_inputs(n, 10));
    EXPECT_LE(net.corrupt_count(), n / 3);
  }
}

TEST(FaultStyles, HonestCorruptionOnlySpies) {
  // An adversary whose corrupt processors follow the protocol must leave
  // a perfect run (it can only *read*).
  class SpyOnly : public Adversary, public ShareConduct {
   public:
    void on_start(Network& net) override {
      for (ProcId p = 0; p < 12; ++p) net.corrupt(p);
    }
    bool lies_in_share_flows() const override { return false; }
  };
  const std::size_t n = 64;
  Network net(n, n / 3);
  SpyOnly adv;
  AlmostEverywhereBA proto(ProtocolParams::laptop_scale(n), 11);
  auto res = proto.run(net, adv, std::vector<std::uint8_t>(n, 1));
  EXPECT_TRUE(res.decided_bit);
  EXPECT_GE(res.agreement_fraction, 0.95);
}

TEST(ArrayChooserHook, AdversaryArraysAreUsed) {
  // An ArrayChooser that gives corrupt processors all-zero arrays: their
  // bin choices are all bin 0 — detectable in the level stats via reduced
  // good winners, but the protocol must still agree.
  class ZeroArrays : public StaticMaliciousAdversary, public ArrayChooser {
   public:
    ZeroArrays() : StaticMaliciousAdversary(0.1, 12) {}
    std::vector<std::uint64_t> choose_array(ProcId, const ArrayLayout& lay,
                                            Rng&) override {
      return std::vector<std::uint64_t>(lay.total_words(), 0);
    }
  };
  const std::size_t n = 64;
  Network net(n, n / 3);
  ZeroArrays adv;
  AlmostEverywhereBA proto(ProtocolParams::laptop_scale(n), 13);
  auto res = proto.run(net, adv, std::vector<std::uint8_t>(n, 1));
  EXPECT_TRUE(res.decided_bit);
  EXPECT_GE(res.agreement_fraction, 0.9);
}

TEST(GlobalCoin, PluralityAndAgreementHelpers) {
  AeResult fake;
  fake.seq_views = {{5, 5, 5, 7}};
  fake.seq_word_good = {true};
  fake.seq_truth = {5};
  std::vector<bool> corrupt(4, false);
  EXPECT_EQ(sequence_plurality(fake, 0, corrupt), 5u);
  EXPECT_DOUBLE_EQ(sequence_agreement(fake, 0, corrupt), 0.75);
  corrupt[3] = true;  // the dissenter is corrupt: full agreement
  EXPECT_DOUBLE_EQ(sequence_agreement(fake, 0, corrupt), 1.0);
}

TEST(GlobalCoin, AssessCountsOnlyIntactWords) {
  AeResult fake;
  fake.seq_views = {{1, 1, 1, 1}, {2, 9, 8, 7}, {3, 3, 3, 3}};
  fake.seq_word_good = {true, true, false};
  fake.seq_truth = {1, 2, 3};
  std::vector<bool> corrupt(4, false);
  auto q = assess_sequence(fake, corrupt, 0.9);
  EXPECT_EQ(q.length, 3u);
  EXPECT_EQ(q.good_owner, 2u);
  EXPECT_EQ(q.good_words, 1u);  // word 1 is honest but shattered
}

TEST(Everywhere, RoundsAccumulateAcrossPhases) {
  const std::size_t n = 64;
  Network net(n, n / 3);
  PassiveStaticAdversary adv({});
  EverywhereBA proto = EverywhereBA::make(n, 14);
  auto res = proto.run(net, adv, random_inputs(n, 15));
  EXPECT_GT(res.rounds, res.ae.rounds);  // A2E added network rounds
  EXPECT_EQ(res.rounds, net.round());
}

TEST(Everywhere, BudgetSharedAcrossPhases) {
  // One Network carries both phases; the adaptive budget spans them.
  const std::size_t n = 64;
  Network net(n, n / 3);
  StaticMaliciousAdversary adv(0.3, 16);
  EverywhereBA proto = EverywhereBA::make(n, 17);
  proto.run(net, adv, random_inputs(n, 18));
  EXPECT_LE(net.corrupt_count(), n / 3);
  EXPECT_GE(net.corrupt_count(), n / 5);  // the strategy did corrupt
}

class EverywhereSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(EverywhereSizes, EndToEndAcrossTreeShapes) {
  const std::size_t n = GetParam();
  Network net(n, n / 3);
  StaticMaliciousAdversary adv(0.08, 19);
  EverywhereBA proto = EverywhereBA::make(n, 20);
  auto res = proto.run(net, adv, random_inputs(n, 21));
  EXPECT_TRUE(res.validity);
  const double good = static_cast<double>(net.good_procs().size());
  EXPECT_GE(static_cast<double>(res.a2e.agree_count) / good, 0.95)
      << "n = " << n;
}

INSTANTIATE_TEST_SUITE_P(Sizes, EverywhereSizes,
                         ::testing::Values(64, 100, 128, 256));

}  // namespace
}  // namespace ba
