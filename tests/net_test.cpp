// Tests for the synchronous network: delivery semantics, privacy of the
// adversary's view, corruption budget, bit accounting.
#include <gtest/gtest.h>

#include "net/adversary.h"
#include "net/network.h"

namespace ba {
namespace {

TEST(Network, DeliversNextRound) {
  Network net(4, 1);
  net.send(0, 1, make_value_payload(7, 42, 8));
  EXPECT_TRUE(net.inbox(1).empty());  // not yet delivered
  net.advance_round();
  ASSERT_EQ(net.inbox(1).size(), 1u);
  EXPECT_EQ(net.inbox(1)[0].from, 0u);
  EXPECT_EQ(net.inbox(1)[0].payload.words[0], 42u);
}

TEST(Network, InboxClearedEachRound) {
  Network net(4, 1);
  net.send(0, 1, make_value_payload(7, 1, 1));
  net.advance_round();
  EXPECT_EQ(net.inbox(1).size(), 1u);
  net.advance_round();
  EXPECT_TRUE(net.inbox(1).empty());
}

TEST(Network, InboxSortedBySender) {
  Network net(5, 1);
  net.send(3, 0, make_value_payload(7, 3, 2));
  net.send(1, 0, make_value_payload(7, 1, 2));
  net.send(2, 0, make_value_payload(7, 2, 2));
  net.advance_round();
  ASSERT_EQ(net.inbox(0).size(), 3u);
  EXPECT_EQ(net.inbox(0)[0].from, 1u);
  EXPECT_EQ(net.inbox(0)[1].from, 2u);
  EXPECT_EQ(net.inbox(0)[2].from, 3u);
}

TEST(Network, DuplicatesFromOneSenderStayAdjacentAndOrdered) {
  Network net(3, 1);
  net.send(1, 0, make_value_payload(7, 10, 4));
  net.send(2, 0, make_value_payload(7, 99, 4));
  net.send(1, 0, make_value_payload(7, 11, 4));
  net.advance_round();
  ASSERT_EQ(net.inbox(0).size(), 3u);
  EXPECT_EQ(net.inbox(0)[0].payload.words[0], 10u);  // first msg from 1
  EXPECT_EQ(net.inbox(0)[1].payload.words[0], 11u);  // second msg from 1
  EXPECT_EQ(net.inbox(0)[2].from, 2u);
}

TEST(Network, RoundCounterAdvances) {
  Network net(2, 1);
  EXPECT_EQ(net.round(), 0u);
  net.advance_round();
  net.advance_round();
  EXPECT_EQ(net.round(), 2u);
}

TEST(Network, CorruptionBudgetEnforced) {
  Network net(9, 2);
  net.corrupt(0);
  net.corrupt(1);
  EXPECT_EQ(net.corruption_budget_left(), 0u);
  EXPECT_THROW(net.corrupt(2), std::logic_error);
  net.corrupt(1);  // re-corrupting is a no-op
  EXPECT_EQ(net.corrupt_count(), 2u);
}

TEST(Network, GoodProcsExcludesCorrupt) {
  Network net(5, 2);
  net.corrupt(2);
  auto good = net.good_procs();
  EXPECT_EQ(good.size(), 4u);
  for (auto p : good) EXPECT_NE(p, 2u);
}

TEST(Network, AdversarySeesOnlyCorruptEndpoints) {
  // Private channels: pending traffic between good processors is
  // invisible to the adversary.
  Network net(4, 1);
  net.corrupt(3);
  net.send(0, 1, make_value_payload(7, 1, 1));  // good -> good: hidden
  net.send(0, 3, make_value_payload(7, 2, 1));  // good -> corrupt: visible
  net.send(3, 2, make_value_payload(7, 3, 1));  // corrupt -> good: visible
  auto visible = net.pending_visible_to_adversary();
  ASSERT_EQ(visible.size(), 2u);
  for (const auto& r : visible) {
    const Envelope& e = net.pending_envelope(r);
    EXPECT_TRUE(net.is_corrupt(e.from) || net.is_corrupt(e.to));
  }
}

TEST(Network, PendingRefsSurviveAdversarialInjection) {
  // The rushing adversary reads its view and then injects; the handles it
  // holds must stay valid (the seed returned raw pointers into a vector
  // that reallocation invalidated).
  Network net(8, 2);
  net.corrupt(7);
  net.send(0, 7, make_value_payload(1, 111, 8));
  auto visible = net.pending_visible_to_adversary();
  ASSERT_EQ(visible.size(), 1u);
  const PendingRef held = visible[0];
  // Inject enough traffic to force every staging bucket to reallocate.
  for (int i = 0; i < 1000; ++i)
    net.send(7, static_cast<ProcId>(i % 8), make_value_payload(2, i, 8));
  EXPECT_EQ(net.pending_envelope(held).payload.words[0], 111u);
  EXPECT_EQ(net.pending_envelope(held).from, 0u);
}

TEST(Network, StalePendingRefsDieLoudlyAcrossRounds) {
  // Regression: a handle held across advance_round() used to resolve
  // silently to whatever the next round staged at the same index. The
  // round stamp makes the staleness a contract violation instead.
  Network net(4, 1);
  net.corrupt(1);
  net.send(0, 1, make_value_payload(7, 5, 4));
  auto visible = net.pending_visible_to_adversary();
  ASSERT_EQ(visible.size(), 1u);
  const PendingRef held = visible[0];
  net.advance_round();
  // Stage a different envelope at the very same (receiver, index) slot:
  // the stale handle's index is in range, so only the round stamp can
  // tell the two apart.
  net.send(2, 1, make_value_payload(7, 99, 4));
  EXPECT_THROW(net.pending_envelope(held), std::logic_error);
  // A fresh handle to the new round's envelope still resolves.
  auto fresh = net.pending_visible_to_adversary();
  ASSERT_EQ(fresh.size(), 1u);
  EXPECT_EQ(net.pending_envelope(fresh[0]).payload.words[0], 99u);
}

TEST(Network, MixedTagSpikeCapacityIsReleasedAfterTheSwap) {
  // Regression for the delivery-path release bug: the mixed-tag
  // redistribution swaps the inbox with per-worker scratch, and the
  // release policy used to run *before* the swap — so the buffer that
  // actually became the inbox was never evaluated, the old inbox block
  // (spike-sized) parked in scratch, and that capacity migrated to
  // whichever receiver the worker delivered next. Post-fix, a small
  // mixed-tag round after a spike must come out with a small inbox.
  Network net(2, 1);  // n <= 64: all delivery on one worker, one scratch
  const std::size_t kSpike = 5000;
  for (std::size_t i = 0; i < kSpike; ++i)
    net.send(1, 0, make_value_payload(10 + (i % 2), i, 16));
  net.advance_round();
  ASSERT_EQ(net.inbox(0).size(), kSpike);
  // Small mixed-tag round through the same worker's scratch.
  net.send(1, 0, make_value_payload(10, 1, 16));
  net.send(1, 0, make_value_payload(11, 2, 16));
  net.advance_round();
  ASSERT_EQ(net.inbox(0).size(), 2u);
  EXPECT_EQ(net.inbox(0)[0].payload.tag, 10u);
  EXPECT_EQ(net.inbox(0)[0].payload.words[0], 1u);
  EXPECT_EQ(net.inbox(0)[1].payload.tag, 11u);
  EXPECT_EQ(net.inbox(0)[1].payload.words[0], 2u);
  EXPECT_LE(net.inbox(0).capacity(), 1024u)
      << "spike capacity survived the mixed-tag swap";
}

TEST(Network, MidRoundCorruptionRevealsPendingTraffic) {
  // Adaptive takeover mid-round: traffic queued while an endpoint was
  // still good becomes visible once that endpoint is corrupted.
  Network net(4, 2);
  net.send(0, 1, make_value_payload(7, 5, 4));  // good -> good: hidden
  EXPECT_TRUE(net.pending_visible_to_adversary().empty());
  net.corrupt(1);
  auto visible = net.pending_visible_to_adversary();
  ASSERT_EQ(visible.size(), 1u);
  EXPECT_EQ(net.pending_envelope(visible[0]).payload.words[0], 5u);
  // Incremental additions after the rebuild keep working, and the view
  // stays in global send order even though a rebuild happened in between.
  net.send(2, 1, make_value_payload(7, 6, 4));
  auto after = net.pending_visible_to_adversary();
  ASSERT_EQ(after.size(), 2u);
  EXPECT_EQ(net.pending_envelope(after[0]).payload.words[0], 5u);
  EXPECT_EQ(net.pending_envelope(after[1]).payload.words[0], 6u);
}

TEST(Network, VisibilityIndexResetsAcrossRounds) {
  Network net(4, 1);
  net.corrupt(3);
  net.send(0, 3, make_value_payload(7, 1, 1));
  EXPECT_EQ(net.pending_visible_to_adversary().size(), 1u);
  net.advance_round();
  EXPECT_TRUE(net.pending_visible_to_adversary().empty());
  net.send(1, 3, make_value_payload(7, 2, 1));
  EXPECT_EQ(net.pending_visible_to_adversary().size(), 1u);
}

TEST(Network, TaggedInboxPartitionsByTag) {
  Network net(4, 1);
  net.send(2, 0, make_value_payload(9, 20, 4));
  net.send(1, 0, make_value_payload(7, 10, 4));
  net.send(3, 0, make_value_payload(7, 30, 4));
  net.send(1, 0, make_value_payload(9, 11, 4));
  net.advance_round();
  // Inbox is (tag, sender) ordered: tag 7 group first, then tag 9.
  ASSERT_EQ(net.inbox(0).size(), 4u);
  TaggedInbox sevens = net.inbox(0, 7);
  ASSERT_EQ(sevens.size(), 2u);
  EXPECT_EQ(sevens.begin()[0].from, 1u);
  EXPECT_EQ(sevens.begin()[1].from, 3u);
  TaggedInbox nines = net.inbox(0, 9);
  ASSERT_EQ(nines.size(), 2u);
  EXPECT_EQ(nines.begin()[0].from, 1u);
  EXPECT_EQ(nines.begin()[0].payload.words[0], 11u);
  EXPECT_EQ(nines.begin()[1].from, 2u);
  EXPECT_TRUE(net.inbox(0, 8).empty());
  EXPECT_TRUE(net.inbox(1, 7).empty());  // empty inbox, empty span
}

TEST(Network, TaggedInboxKeepsSenderStability) {
  // Within a tag, duplicates from one sender stay adjacent and ordered —
  // the same subsequence a tag filter over the sender-sorted inbox gave.
  Network net(3, 1);
  net.send(1, 0, make_value_payload(5, 1, 4));
  net.send(2, 0, make_value_payload(4, 99, 4));
  net.send(1, 0, make_value_payload(5, 2, 4));
  net.advance_round();
  TaggedInbox fives = net.inbox(0, 5);
  ASSERT_EQ(fives.size(), 2u);
  EXPECT_EQ(fives.begin()[0].payload.words[0], 1u);
  EXPECT_EQ(fives.begin()[1].payload.words[0], 2u);
}

TEST(Network, TaggedInboxResetsEachRound) {
  Network net(3, 1);
  net.send(1, 0, make_value_payload(5, 1, 4));
  net.advance_round();
  EXPECT_EQ(net.inbox(0, 5).size(), 1u);
  net.advance_round();
  EXPECT_TRUE(net.inbox(0, 5).empty());
}

TEST(Network, ChargeBatchMatchesChargeBulk) {
  // charge_batch must be bit-for-bit equivalent to charge_bulk, including
  // message counts, across interleaved senders and mid-round reads.
  Network a(4, 1), b(4, 1);
  for (int rep = 0; rep < 3; ++rep) {
    for (ProcId to = 1; to < 4; ++to) {
      a.charge_bulk(0, to, 61);
      b.charge_batch(0, to, 61);
    }
    a.charge_bulk(2, 1, 7);  // sender switch flushes the batch
    b.charge_batch(2, 1, 7);
  }
  // Ledger access drains the pending batch even before advance_round.
  for (ProcId p = 0; p < 4; ++p) {
    EXPECT_EQ(a.ledger().bits_sent(p), b.ledger().bits_sent(p));
    EXPECT_EQ(a.ledger().msgs_sent(p), b.ledger().msgs_sent(p));
    EXPECT_EQ(a.ledger().bits_received(p), b.ledger().bits_received(p));
  }
  a.advance_round();
  b.advance_round();
  EXPECT_EQ(a.ledger().total_bits_sent(std::vector<bool>(4, false), false),
            b.ledger().total_bits_sent(std::vector<bool>(4, false), false));
}

TEST(Network, LedgerChargesSenderAndReceiver) {
  Network net(3, 1);
  Payload p = make_value_payload(7, 5, 10);  // 10 content bits
  const std::size_t bits = p.bits();
  net.send(0, 1, std::move(p));
  EXPECT_EQ(net.ledger().bits_sent(0), bits);
  EXPECT_EQ(net.ledger().msgs_sent(0), 1u);
  EXPECT_EQ(net.ledger().bits_received(1), 0u);  // charged on delivery
  net.advance_round();
  EXPECT_EQ(net.ledger().bits_received(1), bits);
}

TEST(Network, ChargeBulkMatchesSend) {
  Network a(3, 1), b(3, 1);
  Payload p = make_value_payload(7, 5, 10);
  a.send(0, 1, p);
  a.advance_round();
  b.charge_bulk(0, 1, 10);
  EXPECT_EQ(a.ledger().bits_sent(0), b.ledger().bits_sent(0));
  EXPECT_EQ(a.ledger().bits_received(1), b.ledger().bits_received(1));
}

TEST(Network, RejectsBadIds) {
  Network net(3, 1);
  EXPECT_THROW(net.send(0, 5, Payload{}), std::logic_error);
  EXPECT_THROW(net.send(5, 0, Payload{}), std::logic_error);
  EXPECT_THROW(net.corrupt(9), std::logic_error);
}

TEST(Network, RejectsFullCorruption) {
  EXPECT_THROW(Network(3, 3), std::logic_error);
}

TEST(BitLedger, MaxAndTotalsByMask) {
  BitLedger ledger(4);
  ledger.charge_send(0, 10);
  ledger.charge_send(1, 30);
  ledger.charge_send(2, 20);
  std::vector<bool> corrupt{false, true, false, false};
  EXPECT_EQ(ledger.max_bits_sent(corrupt, false), 20u);
  EXPECT_EQ(ledger.max_bits_sent(corrupt, true), 30u);
  EXPECT_EQ(ledger.total_bits_sent(corrupt, false), 30u);
  EXPECT_EQ(ledger.total_msgs_sent(corrupt, false), 2u);
}

TEST(Payload, BitAccounting) {
  Payload words = make_words_payload(1, {1, 2, 3});
  EXPECT_EQ(words.content_bits, 3 * kWordBits);
  EXPECT_EQ(words.bits(), 3 * kWordBits + kHeaderBits);
  Payload vote = make_value_payload(2, 1, 1);
  EXPECT_EQ(vote.bits(), 1 + kHeaderBits);
}

TEST(Payload, InlineAndHeapStorageAccountIdentically) {
  // The small-buffer optimization must be invisible to the paper's bit
  // ledger: a payload of w words costs the same whether the words sit in
  // the inline buffer or spilled to the heap.
  for (std::size_t w = 0; w <= 2 * WordVec::kInlineWords + 1; ++w) {
    WordVec direct;
    std::vector<std::uint64_t> reference;
    for (std::size_t i = 0; i < w; ++i) {
      direct.push_back(i + 1);
      reference.push_back(i + 1);
    }
    Payload a = make_words_payload(9, std::move(direct));
    Payload b = make_words_payload(9, WordVec(reference));
    EXPECT_EQ(a.words.is_inline(), w <= WordVec::kInlineWords);
    EXPECT_EQ(a.content_bits, b.content_bits);
    EXPECT_EQ(a.bits(), b.bits());
    EXPECT_EQ(a.bits(), w * kWordBits + kHeaderBits);
    EXPECT_EQ(a.words, b.words);
  }
}

TEST(WordVec, SpillsToHeapAndPreservesContents) {
  WordVec v;
  EXPECT_TRUE(v.is_inline());
  for (std::uint64_t i = 0; i < 100; ++i) v.push_back(i * 3);
  EXPECT_FALSE(v.is_inline());
  ASSERT_EQ(v.size(), 100u);
  for (std::uint64_t i = 0; i < 100; ++i) EXPECT_EQ(v[i], i * 3);
  // Copy and move both preserve contents across the spill boundary.
  WordVec copy = v;
  WordVec moved = std::move(v);
  EXPECT_EQ(copy, moved);
  // Insert-at-end (the AEBA packing pattern) works inline and spilled.
  WordVec small{7};
  std::vector<std::uint64_t> tail{8, 9, 10};
  small.insert(small.end(), tail.begin(), tail.end());
  ASSERT_EQ(small.size(), 4u);
  EXPECT_EQ(small[0], 7u);
  EXPECT_EQ(small[3], 10u);
}

TEST(WordVec, CopyOnWriteSharesSpilledBuffersUntilMutation) {
  WordVec a;
  for (std::uint64_t i = 0; i < 8; ++i) a.push_back(i);
  ASSERT_FALSE(a.is_inline());
  EXPECT_FALSE(a.is_shared());
  WordVec b = a;  // bulk fan-out: pointer copy, no word copy
  EXPECT_TRUE(a.is_shared());
  EXPECT_TRUE(b.is_shared());
  const WordVec& ca = a;
  const WordVec& cb = b;
  EXPECT_EQ(ca.data(), cb.data());  // aliased; const reads don't detach
  EXPECT_EQ(a, b);
  b[3] = 99;  // first mutating access detaches a private copy
  EXPECT_FALSE(a.is_shared());
  EXPECT_FALSE(b.is_shared());
  EXPECT_NE(ca.data(), cb.data());
  EXPECT_EQ(a[3], 3u);
  EXPECT_EQ(b[3], 99u);
}

TEST(WordVec, CopyOnWriteSurvivesSourceDestruction) {
  WordVec survivor;
  {
    WordVec source;
    for (std::uint64_t i = 0; i < 16; ++i) source.push_back(i * 7);
    survivor = source;
    EXPECT_TRUE(survivor.is_shared());
  }  // source released its reference
  EXPECT_FALSE(survivor.is_shared());
  for (std::uint64_t i = 0; i < 16; ++i) EXPECT_EQ(survivor[i], i * 7);
}

TEST(WordVec, SharedPushBackAndClearDetachCorrectly) {
  WordVec a;
  for (std::uint64_t i = 0; i < 5; ++i) a.push_back(i);
  WordVec b = a;
  b.push_back(100);  // must not grow through a's buffer
  ASSERT_EQ(a.size(), 5u);
  ASSERT_EQ(b.size(), 6u);
  EXPECT_EQ(b[5], 100u);
  WordVec c = a;
  c.clear();          // size-only; no write yet
  c.push_back(42);    // detaches before writing slot 0
  EXPECT_EQ(a[0], 0u);
  EXPECT_EQ(c[0], 42u);
}

TEST(WordVec, InlinePayloadsNeverShare) {
  WordVec a{1, 2};
  WordVec b = a;
  EXPECT_TRUE(a.is_inline());
  EXPECT_TRUE(b.is_inline());
  EXPECT_FALSE(a.is_shared());
  b[0] = 5;
  EXPECT_EQ(a[0], 1u);  // inline copies were always independent
}

TEST(WordVec, MovedFromSharedBufferKeepsOtherHoldersAlive) {
  WordVec a;
  for (std::uint64_t i = 0; i < 8; ++i) a.push_back(i);
  WordVec b = a;
  WordVec c = std::move(a);  // c takes a's reference; b unaffected
  EXPECT_TRUE(b.is_shared());
  EXPECT_TRUE(c.is_shared());
  EXPECT_EQ(b, c);
  EXPECT_EQ(a.size(), 0u);
}

TEST(PassiveStaticAdversary, CorruptsItsSetOnly) {
  Network net(10, 3);
  PassiveStaticAdversary adv({1, 4, 7});
  adv.on_start(net);
  EXPECT_TRUE(net.is_corrupt(1));
  EXPECT_TRUE(net.is_corrupt(4));
  EXPECT_TRUE(net.is_corrupt(7));
  EXPECT_EQ(net.corrupt_count(), 3u);
}

}  // namespace
}  // namespace ba
