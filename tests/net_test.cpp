// Tests for the synchronous network: delivery semantics, privacy of the
// adversary's view, corruption budget, bit accounting.
#include <gtest/gtest.h>

#include "net/adversary.h"
#include "net/network.h"

namespace ba {
namespace {

TEST(Network, DeliversNextRound) {
  Network net(4, 1);
  net.send(0, 1, make_value_payload(7, 42, 8));
  EXPECT_TRUE(net.inbox(1).empty());  // not yet delivered
  net.advance_round();
  ASSERT_EQ(net.inbox(1).size(), 1u);
  EXPECT_EQ(net.inbox(1)[0].from, 0u);
  EXPECT_EQ(net.inbox(1)[0].payload.words[0], 42u);
}

TEST(Network, InboxClearedEachRound) {
  Network net(4, 1);
  net.send(0, 1, make_value_payload(7, 1, 1));
  net.advance_round();
  EXPECT_EQ(net.inbox(1).size(), 1u);
  net.advance_round();
  EXPECT_TRUE(net.inbox(1).empty());
}

TEST(Network, InboxSortedBySender) {
  Network net(5, 1);
  net.send(3, 0, make_value_payload(7, 3, 2));
  net.send(1, 0, make_value_payload(7, 1, 2));
  net.send(2, 0, make_value_payload(7, 2, 2));
  net.advance_round();
  ASSERT_EQ(net.inbox(0).size(), 3u);
  EXPECT_EQ(net.inbox(0)[0].from, 1u);
  EXPECT_EQ(net.inbox(0)[1].from, 2u);
  EXPECT_EQ(net.inbox(0)[2].from, 3u);
}

TEST(Network, DuplicatesFromOneSenderStayAdjacentAndOrdered) {
  Network net(3, 1);
  net.send(1, 0, make_value_payload(7, 10, 4));
  net.send(2, 0, make_value_payload(7, 99, 4));
  net.send(1, 0, make_value_payload(7, 11, 4));
  net.advance_round();
  ASSERT_EQ(net.inbox(0).size(), 3u);
  EXPECT_EQ(net.inbox(0)[0].payload.words[0], 10u);  // first msg from 1
  EXPECT_EQ(net.inbox(0)[1].payload.words[0], 11u);  // second msg from 1
  EXPECT_EQ(net.inbox(0)[2].from, 2u);
}

TEST(Network, RoundCounterAdvances) {
  Network net(2, 1);
  EXPECT_EQ(net.round(), 0u);
  net.advance_round();
  net.advance_round();
  EXPECT_EQ(net.round(), 2u);
}

TEST(Network, CorruptionBudgetEnforced) {
  Network net(9, 2);
  net.corrupt(0);
  net.corrupt(1);
  EXPECT_EQ(net.corruption_budget_left(), 0u);
  EXPECT_THROW(net.corrupt(2), std::logic_error);
  net.corrupt(1);  // re-corrupting is a no-op
  EXPECT_EQ(net.corrupt_count(), 2u);
}

TEST(Network, GoodProcsExcludesCorrupt) {
  Network net(5, 2);
  net.corrupt(2);
  auto good = net.good_procs();
  EXPECT_EQ(good.size(), 4u);
  for (auto p : good) EXPECT_NE(p, 2u);
}

TEST(Network, AdversarySeesOnlyCorruptEndpoints) {
  // Private channels: pending traffic between good processors is
  // invisible to the adversary.
  Network net(4, 1);
  net.corrupt(3);
  net.send(0, 1, make_value_payload(7, 1, 1));  // good -> good: hidden
  net.send(0, 3, make_value_payload(7, 2, 1));  // good -> corrupt: visible
  net.send(3, 2, make_value_payload(7, 3, 1));  // corrupt -> good: visible
  auto visible = net.pending_visible_to_adversary();
  ASSERT_EQ(visible.size(), 2u);
  for (const auto* e : visible)
    EXPECT_TRUE(net.is_corrupt(e->from) || net.is_corrupt(e->to));
}

TEST(Network, LedgerChargesSenderAndReceiver) {
  Network net(3, 1);
  Payload p = make_value_payload(7, 5, 10);  // 10 content bits
  const std::size_t bits = p.bits();
  net.send(0, 1, std::move(p));
  EXPECT_EQ(net.ledger().bits_sent(0), bits);
  EXPECT_EQ(net.ledger().msgs_sent(0), 1u);
  EXPECT_EQ(net.ledger().bits_received(1), 0u);  // charged on delivery
  net.advance_round();
  EXPECT_EQ(net.ledger().bits_received(1), bits);
}

TEST(Network, ChargeBulkMatchesSend) {
  Network a(3, 1), b(3, 1);
  Payload p = make_value_payload(7, 5, 10);
  a.send(0, 1, p);
  a.advance_round();
  b.charge_bulk(0, 1, 10);
  EXPECT_EQ(a.ledger().bits_sent(0), b.ledger().bits_sent(0));
  EXPECT_EQ(a.ledger().bits_received(1), b.ledger().bits_received(1));
}

TEST(Network, RejectsBadIds) {
  Network net(3, 1);
  EXPECT_THROW(net.send(0, 5, Payload{}), std::logic_error);
  EXPECT_THROW(net.send(5, 0, Payload{}), std::logic_error);
  EXPECT_THROW(net.corrupt(9), std::logic_error);
}

TEST(Network, RejectsFullCorruption) {
  EXPECT_THROW(Network(3, 3), std::logic_error);
}

TEST(BitLedger, MaxAndTotalsByMask) {
  BitLedger ledger(4);
  ledger.charge_send(0, 10);
  ledger.charge_send(1, 30);
  ledger.charge_send(2, 20);
  std::vector<bool> corrupt{false, true, false, false};
  EXPECT_EQ(ledger.max_bits_sent(corrupt, false), 20u);
  EXPECT_EQ(ledger.max_bits_sent(corrupt, true), 30u);
  EXPECT_EQ(ledger.total_bits_sent(corrupt, false), 30u);
  EXPECT_EQ(ledger.total_msgs_sent(corrupt, false), 2u);
}

TEST(Payload, BitAccounting) {
  Payload words = make_words_payload(1, {1, 2, 3});
  EXPECT_EQ(words.content_bits, 3 * kWordBits);
  EXPECT_EQ(words.bits(), 3 * kWordBits + kHeaderBits);
  Payload vote = make_value_payload(2, 1, 1);
  EXPECT_EQ(vote.bits(), 1 + kHeaderBits);
}

TEST(PassiveStaticAdversary, CorruptsItsSetOnly) {
  Network net(10, 3);
  PassiveStaticAdversary adv({1, 4, 7});
  adv.on_start(net);
  EXPECT_TRUE(net.is_corrupt(1));
  EXPECT_TRUE(net.is_corrupt(4));
  EXPECT_TRUE(net.is_corrupt(7));
  EXPECT_EQ(net.corrupt_count(), 3u);
}

}  // namespace
}  // namespace ba
