// Integration tests for the full protocol stack: Algorithm 2 (AEBA via the
// tournament), §3.5 (coin subsequence), Algorithm 3 (A2E) and Algorithm 4
// (everywhere BA), against passive, crash, malicious, and adaptive
// adversaries.
#include <gtest/gtest.h>

#include "adversary/strategies.h"
#include "core/everywhere.h"
#include "core/global_coin.h"
#include "metrics/experiment.h"

namespace ba {
namespace {

std::vector<std::uint8_t> unanimous(std::size_t n, std::uint8_t b) {
  return std::vector<std::uint8_t>(n, b);
}

std::vector<std::uint8_t> random_inputs(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::uint8_t> in(n);
  for (auto& b : in) b = rng.flip() ? 1 : 0;
  return in;
}

// ---------------------------------------------------- almost everywhere --

TEST(AlmostEverywhere, UnanimousNoFaults) {
  const std::size_t n = 64;
  auto params = ProtocolParams::laptop_scale(n);
  AlmostEverywhereBA proto(params, 1);
  Network net(n, n / 3);
  PassiveStaticAdversary adv({});
  auto res = proto.run(net, adv, unanimous(n, 1));
  EXPECT_TRUE(res.validity);
  EXPECT_TRUE(res.decided_bit);
  EXPECT_GE(res.agreement_fraction, 0.95);
}

TEST(AlmostEverywhere, UnanimousZeroPreserved) {
  const std::size_t n = 64;
  AlmostEverywhereBA proto(ProtocolParams::laptop_scale(n), 2);
  Network net(n, n / 3);
  PassiveStaticAdversary adv({});
  auto res = proto.run(net, adv, unanimous(n, 0));
  EXPECT_FALSE(res.decided_bit);
  EXPECT_GE(res.agreement_fraction, 0.95);
}

TEST(AlmostEverywhere, SplitInputsReachAgreement) {
  const std::size_t n = 64;
  AlmostEverywhereBA proto(ProtocolParams::laptop_scale(n), 3);
  Network net(n, n / 3);
  PassiveStaticAdversary adv({});
  auto res = proto.run(net, adv, random_inputs(n, 4));
  EXPECT_GE(res.agreement_fraction, 1.0 - 1.5 / 6.0);  // 1 - C/log n
  EXPECT_TRUE(res.validity);
}

TEST(AlmostEverywhere, SurvivesCrashFaults) {
  const std::size_t n = 64;
  AlmostEverywhereBA proto(ProtocolParams::laptop_scale(n), 5);
  Network net(n, n / 3);
  CrashAdversary adv(0.15, 6);
  auto res = proto.run(net, adv, unanimous(n, 1));
  EXPECT_TRUE(res.decided_bit);
  EXPECT_GE(res.agreement_fraction, 0.9);
}

TEST(AlmostEverywhere, SurvivesMaliciousMinority) {
  const std::size_t n = 64;
  AlmostEverywhereBA proto(ProtocolParams::laptop_scale(n), 7);
  Network net(n, n / 3);
  StaticMaliciousAdversary adv(0.10, 8);
  auto res = proto.run(net, adv, unanimous(n, 1));
  EXPECT_TRUE(res.decided_bit) << "unanimous good input must survive";
  EXPECT_GE(res.agreement_fraction, 0.85);
}

TEST(AlmostEverywhere, PerLevelStatsPopulated) {
  const std::size_t n = 64;
  AlmostEverywhereBA proto(ProtocolParams::laptop_scale(n), 9);
  Network net(n, n / 3);
  PassiveStaticAdversary adv({});
  auto res = proto.run(net, adv, random_inputs(n, 10));
  ASSERT_FALSE(res.levels.empty());
  for (const auto& lvl : res.levels) {
    EXPECT_GE(lvl.level, 2u);
    EXPECT_GT(lvl.winners_total, 0u);
    EXPECT_LE(lvl.winners_good, lvl.winners_total);
    EXPECT_GE(lvl.mean_bin_agreement, 0.8);
  }
  EXPECT_GT(res.rounds, 0u);
}

TEST(AlmostEverywhere, NoFaultWinnersAllGood) {
  const std::size_t n = 64;
  AlmostEverywhereBA proto(ProtocolParams::laptop_scale(n), 11);
  Network net(n, n / 3);
  PassiveStaticAdversary adv({});
  auto res = proto.run(net, adv, random_inputs(n, 12));
  for (const auto& lvl : res.levels)
    EXPECT_EQ(lvl.winners_good, lvl.winners_total) << "level " << lvl.level;
}

TEST(AlmostEverywhere, SequenceReleasedAndMostlyGood) {
  const std::size_t n = 64;
  auto params = ProtocolParams::laptop_scale(n);
  params.coin_words = 8;  // longer sequence for meaningful bias stats
  AlmostEverywhereBA proto(params, 13);
  Network net(n, n / 3);
  StaticMaliciousAdversary adv(0.1, 14);
  auto res = proto.run(net, adv, random_inputs(n, 15));
  ASSERT_EQ(res.seq_views.size(), params.coin_words * res.r_root);
  auto q = assess_sequence(res, net.corrupt_mask());
  // Theorem 2's (s, 2s/3) is asymptotic; the finite-n form is Lemma 6's
  // 2/3 - O(levels / log n), a real deduction at n = 64 (log2 n = 6,
  // 4 levels). Bar: a solid majority of usable coins.
  EXPECT_GE(static_cast<double>(q.good_words) /
                static_cast<double>(q.length),
            0.55);
  EXPECT_GE(q.min_good_agreement, 0.85);
  EXPECT_NEAR(q.good_bit_bias, 0.5, 0.3);
}

TEST(AlmostEverywhere, SubQuadraticTotalBits) {
  // The headline scaling sanity check at one size: total good bits per
  // processor far below the n-per-processor a quadratic protocol needs
  // at equal message grain is not checkable at n=64; instead check the
  // ledger is populated and the max-to-mean spread is modest.
  const std::size_t n = 64;
  AlmostEverywhereBA proto(ProtocolParams::laptop_scale(n), 16);
  Network net(n, n / 3);
  PassiveStaticAdversary adv({});
  proto.run(net, adv, random_inputs(n, 17));
  const auto& mask = net.corrupt_mask();
  EXPECT_GT(net.ledger().total_bits_sent(mask, false), 0u);
  EXPECT_GT(net.ledger().max_bits_sent(mask, false), 0u);
}

TEST(AlmostEverywhere, RejectsSizeMismatch) {
  AlmostEverywhereBA proto(ProtocolParams::laptop_scale(64), 18);
  Network net(32, 8);
  PassiveStaticAdversary adv({});
  EXPECT_THROW(proto.run(net, adv, unanimous(32, 1)), std::logic_error);
}

TEST(AlmostEverywhere, AdaptiveWinnerTakeoverDoesNotLearnOrBreak) {
  // The paper's raison d'être: corrupting array *owners* after their
  // arrays win gains nothing (shares were dealt and erased), and the
  // protocol still agrees.
  const std::size_t n = 64;
  AlmostEverywhereBA proto(ProtocolParams::laptop_scale(n), 19);
  Network net(n, n / 3);
  AdaptiveWinnerTakeover adv(20, /*corrupt_share_holders=*/false);
  auto res = proto.run(net, adv, unanimous(n, 1));
  EXPECT_TRUE(res.decided_bit);
  EXPECT_GE(res.agreement_fraction, 0.85);
}

// ------------------------------------------------------------------ a2e --

struct A2EFixture {
  std::size_t n;
  A2EParams params;
  Network net;
  std::vector<std::uint64_t> beliefs;

  explicit A2EFixture(std::size_t n_, double knowledgeable_fraction,
                      std::uint64_t seed)
      : n(n_), params(A2EParams::laptop_scale(n_)), net(n_, n_ / 3) {
    // knowledgeable procs hold message 1, confused hold 0.
    Rng rng(seed);
    beliefs.assign(n, 0);
    auto know = rng.sample_without_replacement(
        n, static_cast<std::size_t>(knowledgeable_fraction *
                                    static_cast<double>(n)));
    for (auto p : know) beliefs[p] = 1;
  }
};

std::function<std::uint64_t(std::size_t, ProcId)> shared_labels(
    std::uint64_t seed) {
  return [seed](std::size_t loop, ProcId) {
    std::uint64_t s = seed + loop;
    return splitmix64(s);
  };
}

TEST(A2E, BringsEveryoneToTheMessage) {
  A2EFixture f(256, 0.8, 1);
  PassiveStaticAdversary adv({});
  AlmostToEverywhere a2e(f.params, 2);
  auto res = a2e.run(f.net, adv, f.beliefs, 1, shared_labels(3));
  EXPECT_TRUE(res.all_good_agree);
  EXPECT_EQ(res.wrong_count, 0u);
}

TEST(A2E, NoWrongDecisionsEver) {
  // Lemma 7(2): w.h.p. every processor either decides M or stays
  // undecided. At laptop-scale request budgets the Chernoff tail is not
  // negligible (the paper's a = 32c/eps^2 constant is enormous), so the
  // bar is "at most a vanishing handful", not literal zero.
  A2EFixture f(256, 0.8, 4);
  StaticMaliciousAdversary adv(0.2, 5);
  adv.on_start(f.net);
  AlmostToEverywhere a2e(f.params, 6);
  auto res = a2e.run(f.net, adv, f.beliefs, 1, shared_labels(7));
  for (const auto& loop : res.loops)
    EXPECT_LE(loop.decided_wrong, f.n / 50);
}

TEST(A2E, SucceedsDespiteFlooding) {
  // 0.85 knowledge is the realistic post-tournament operating point
  // (phase 1 leaves >= 1 - 1/log n of good processors knowledgeable).
  A2EFixture f(256, 0.85, 8);
  FloodingA2EAdversary adv(0.2, 9);
  adv.on_start(f.net);
  AlmostToEverywhere a2e(f.params, 10);
  auto res = a2e.run(f.net, adv, f.beliefs, 1, shared_labels(11));
  EXPECT_LE(res.wrong_count, f.n / 50);
  EXPECT_GE(static_cast<double>(res.agree_count),
            0.9 * static_cast<double>(f.net.good_procs().size()));
}

TEST(A2E, OverloadBoundHolds) {
  // Lemma 9: few knowledgeable processors are overloaded per loop.
  A2EFixture f(400, 0.8, 12);
  FloodingA2EAdversary adv(0.25, 13, /*flood_per_pair=*/256);
  adv.on_start(f.net);
  AlmostToEverywhere a2e(f.params, 14);
  auto res = a2e.run(f.net, adv, f.beliefs, 1, shared_labels(15));
  for (const auto& loop : res.loops)
    EXPECT_LE(loop.overloaded_knowledgeable, f.n / 10);
}

TEST(A2E, SqrtNBitsPerProcessor) {
  // Theorem 4 cost shape: per-loop bits per processor are O~(sqrt n).
  const std::size_t n = 1024;
  A2EParams params = A2EParams::laptop_scale(n);
  params.repeats = 1;
  Network net(n, n / 3);
  std::vector<std::uint64_t> beliefs(n, 1);
  PassiveStaticAdversary adv({});
  AlmostToEverywhere a2e(params, 16);
  a2e.run(net, adv, beliefs, 1, shared_labels(17));
  const auto max_bits = net.ledger().max_bits_sent(net.corrupt_mask(), false);
  // sqrt(n) * requests_per_label messages of ~(header + label) bits, plus
  // responses: comfortably below n * 64 (what all-to-all would need) and
  // above sqrt(n).
  EXPECT_LT(max_bits, n * 64u);
  EXPECT_GT(max_bits, static_cast<std::uint64_t>(32 * 32));
}

TEST(A2E, DecisionsAreSticky) {
  A2EFixture f(128, 0.8, 18);
  PassiveStaticAdversary adv({});
  AlmostToEverywhere a2e(f.params, 19);
  auto res = a2e.run(f.net, adv, f.beliefs, 1, shared_labels(20));
  ASSERT_GE(res.loops.size(), 2u);
  for (std::size_t i = 1; i < res.loops.size(); ++i)
    EXPECT_GE(res.loops[i].decided_total, res.loops[i - 1].decided_total);
}

// ----------------------------------------------------------- everywhere --

TEST(Everywhere, EndToEndNoFaults) {
  const std::size_t n = 64;
  EverywhereBA proto = EverywhereBA::make(n, 21);
  Network net(n, n / 3);
  PassiveStaticAdversary adv({});
  auto res = proto.run(net, adv, unanimous(n, 1));
  EXPECT_TRUE(res.decided_bit);
  EXPECT_TRUE(res.validity);
  EXPECT_TRUE(res.all_good_agree);
}

TEST(Everywhere, EndToEndMalicious) {
  const std::size_t n = 64;
  EverywhereBA proto = EverywhereBA::make(n, 22);
  Network net(n, n / 3);
  StaticMaliciousAdversary adv(0.1, 23);
  auto res = proto.run(net, adv, unanimous(n, 0));
  EXPECT_FALSE(res.decided_bit);
  EXPECT_TRUE(res.validity);
  EXPECT_GE(static_cast<double>(res.a2e.agree_count),
            0.95 * static_cast<double>(net.good_procs().size()));
}

TEST(Everywhere, SplitInputsAgree) {
  const std::size_t n = 64;
  EverywhereBA proto = EverywhereBA::make(n, 24);
  Network net(n, n / 3);
  PassiveStaticAdversary adv({});
  auto res = proto.run(net, adv, random_inputs(n, 25));
  EXPECT_TRUE(res.all_good_agree);
}

// ------------------------------------------------------------ baselines --

TEST(Summary, BasicStats) {
  auto s = summarize({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_NEAR(s.stddev, 1.29099, 1e-4);
  EXPECT_EQ(s.count, 4u);
}

TEST(Sweep, RunsAllSeeds) {
  auto s = sweep(5, 100, [](std::uint64_t seed) {
    return static_cast<double>(seed - 99);
  });
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
}

}  // namespace
}  // namespace ba
